#include "common/fault.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace spear {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kStorageStore:
      return "storage-store";
    case FaultSite::kStorageGet:
      return "storage-get";
    case FaultSite::kBoltProcess:
      return "bolt-process";
    case FaultSite::kBoltWatermark:
      return "bolt-watermark";
    case FaultSite::kSpoutMalformed:
      return "spout-malformed";
    case FaultSite::kSpoutDuplicate:
      return "spout-duplicate";
    case FaultSite::kSpoutLate:
      return "spout-late";
    case FaultSite::kWorkerCrash:
      return "worker-crash";
    case FaultSite::kSpoutStall:
      return "spout-stall";
  }
  return "?";
}

Status FaultPlan::Validate() const {
  for (const FaultRule& r : rules) {
    if (static_cast<std::size_t>(r.site) >= kNumFaultSites) {
      return Status::Invalid("fault rule targets an unknown site");
    }
    if (r.probability < 0.0 || r.probability > 1.0) {
      return Status::Invalid("fault probability must be in [0, 1]");
    }
    if (r.probability == 0.0 && r.every_nth == 0) {
      return Status::Invalid("fault rule has no trigger (probability or "
                             "every_nth required)");
    }
    if (r.extra_latency_ns < 0) {
      return Status::Invalid("fault extra latency must be >= 0");
    }
    if (r.lateness_ms < 0) {
      return Status::Invalid("fault lateness must be >= 0");
    }
  }
  return Status::OK();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  SPEAR_CHECK(plan_.Validate().ok());
  for (auto& c : ops_) c.store(0, std::memory_order_relaxed);
  for (auto& c : fires_) c.store(0, std::memory_order_relaxed);
  for (const FaultRule& r : plan_.rules) {
    auto state = std::make_unique<RuleState>();
    state->rule = r;
    rules_[static_cast<std::size_t>(r.site)].push_back(state.get());
    rule_states_.push_back(std::move(state));
  }
}

FaultInjector::Decision FaultInjector::Tick(FaultSite site) {
  Decision decision;
  const auto s = static_cast<std::size_t>(site);
  if (rules_[s].empty()) return decision;
  // 1-based operation index: every_nth = N fires the Nth, 2Nth, ... ops.
  const std::uint64_t op =
      ops_[s].fetch_add(1, std::memory_order_relaxed) + 1;
  for (RuleState* state : rules_[s]) {
    const FaultRule& rule = state->rule;
    bool fire = false;
    if (rule.every_nth > 0 && op % rule.every_nth == 0) fire = true;
    if (!fire && rule.probability > 0.0) {
      // Decision depends only on (seed, site, op): interleaving-independent.
      SplitMix64 h(plan_.seed ^ (static_cast<std::uint64_t>(s) << 56) ^ op);
      const double u = static_cast<double>(h.Next() >> 11) * 0x1p-53;
      fire = u < rule.probability;
    }
    if (!fire) continue;
    if (rule.max_fires > 0) {
      // Reserve a fire slot; back out if the cap is already spent. The
      // cap can never overshoot: fetch_add publishes the reservation.
      const std::uint64_t already =
          state->fires.fetch_add(1, std::memory_order_relaxed);
      if (already >= rule.max_fires) continue;
    } else {
      state->fires.fetch_add(1, std::memory_order_relaxed);
    }
    decision.fire = true;
    decision.extra_latency_ns += rule.extra_latency_ns;
    decision.throw_exception |= rule.throw_exception;
    decision.lateness_ms = std::max(decision.lateness_ms, rule.lateness_ms);
    fires_[s].fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

std::uint64_t FaultInjector::total_fired() const {
  std::uint64_t total = 0;
  for (const auto& c : fires_) total += c.load(std::memory_order_relaxed);
  return total;
}

}  // namespace spear
