#include "common/byte_size.h"

#include <array>
#include <cstdio>

namespace spear {

std::string FormatBytes(std::size_t bytes) {
  static constexpr std::array<const char*, 4> kUnits = {"B", "KiB", "MiB",
                                                        "GiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace spear
