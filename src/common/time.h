#pragma once

#include <chrono>
#include <cstdint>

/// \file time.h
/// Event-time and processing-time conventions. Event time is an int64
/// millisecond count (like Storm/Flink); processing time is measured with a
/// steady clock and reported in nanoseconds.

namespace spear {

/// Event-time instant, in milliseconds. Sentinel kMinTimestamp means
/// "no watermark seen yet".
using Timestamp = std::int64_t;

inline constexpr Timestamp kMinTimestamp = INT64_MIN;
inline constexpr Timestamp kMaxTimestamp = INT64_MAX;

/// Event-time span, in milliseconds.
using DurationMs = std::int64_t;

inline constexpr DurationMs Seconds(std::int64_t s) { return s * 1000; }
inline constexpr DurationMs Minutes(std::int64_t m) { return m * 60'000; }
inline constexpr DurationMs Hours(std::int64_t h) { return h * 3'600'000; }

/// \brief Scoped stopwatch: accumulates elapsed nanoseconds into a sink on
/// destruction.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(std::int64_t* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}

  ~ScopedTimerNs() {
    const auto end = std::chrono::steady_clock::now();
    *sink_ += std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
                  .count();
  }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  std::int64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// Monotonic now() in nanoseconds, for manual interval measurement.
inline std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace spear
